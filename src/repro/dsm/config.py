"""DSM protocol configuration: ParADE variant vs the KDSM baseline."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DsmConfig:
    """Protocol knobs distinguishing the two systems the paper compares."""

    name: str = "parade"
    #: shared-memory pool size (bytes); paper's CG run used 64 MB
    pool_bytes: int = 32 * 1024 * 1024
    #: migrate a page's home to its sole modifier at barriers (§5.2.2)
    home_migration: bool = True
    #: lock clients busy-wait (spin on CPU) instead of blocking — the KDSM
    #: behaviour behind the 2-node `single` anomaly (§6.1)
    lock_spin: bool = False
    #: CPU burst per spin poll while busy-waiting (seconds)
    spin_slice: float = 5e-6
    #: atomic page update strategy name (see repro.vm.strategies)
    update_strategy: str = "sysv-shm"
    #: OS cost profile name: "linux-2.4" or "aix-4.3.3"
    os_profile: str = "linux-2.4"
    #: homeless (TreadMarks-style) LRC: writers retain diffs, faulting nodes
    #: pull missing diffs from every writer (§5.2.2 argues home-based is
    #: preferable — this flag exists to measure that claim).  Barrier
    #: synchronisation only; the lock protocol requires a home directory.
    homeless: bool = False
    #: host-side (wall-clock) optimisation only — never changes virtual
    #: time or protocol behaviour: accesses to already-valid page ranges
    #: skip the generator fault loop via a version-stamped cache
    #: (:meth:`DsmNode.try_fast_access`).  Off = always take the slow
    #: path; the equivalence test pins both to identical traces.
    fast_path: bool = True
    #: coalesce diff runs separated by gaps of at most this many unchanged
    #: bytes into one run (saves per-run headers at the cost of resending
    #: the gap bytes).  0 = exact diffs.  Non-zero is safe only for pages
    #: with a single writer per interval: the gap bytes overwrite the
    #: home copy, clobbering concurrent writers of those bytes — homes
    #: enforce this and raise :class:`~repro.dsm.node.DiffGapClobber` on
    #: a cross-writer overlap.
    diff_gap: int = 0
    #: attach the happens-before sanitizer (:mod:`repro.sanitizer`) to the
    #: run: vector-clock data-race detection over every DSM access plus
    #: live protocol-invariant checks.  Diagnostic tool — adds host-side
    #: cost, never changes virtual time.
    sanitize: bool = False
    #: protocol accelerator — write-notice/diff batching: at a release
    #: (barrier flush or lock release) all diffs destined to the same home
    #: are coalesced into one ``("dsm", "dbat")`` frame per peer with a
    #: single ack, instead of one ``diff``/``diffR`` round-trip per page.
    #: Saves per-message CPU overhead and frame headers; per-page
    #: ``diffs_sent``/``diff_bytes`` accounting is unchanged so runs stay
    #: comparable (``notices_batched`` counts the coalesced records).
    batch_notices: bool = False
    #: per-diff byte ceiling for batching: only diffs at or below this
    #: size join the per-home batch frame.  Large diffs keep their own
    #: frame so the home can overlap applying one diff with receiving the
    #: next (coalescing them would serialise the whole frame's transfer
    #: before any apply, lengthening the flush critical path for the
    #: ~40 B of header it saves).
    batch_max_bytes: int = 512
    #: protocol accelerator — lock-grant diff piggybacking: a releaser
    #: attaches its small diffs to the release message; the manager stores
    #: them alongside the :class:`~repro.dsm.writenotice.NoticeLog` and,
    #: at grant time, ships the complete per-page diff chains for pages
    #: the acquirer wrote under this lock before (last-acquirer history).
    #: The acquirer patches its READ_ONLY copy in place instead of
    #: invalidating, eliminating the fault + page-fetch round-trip inside
    #: the critical section.  Requires exact diffs: silently inert while
    #: ``diff_gap > 0`` (coalesced runs carry stale gap bytes that must
    #: not be replayed at third nodes).
    lock_piggyback: bool = False
    #: per-diff byte budget for piggybacking: larger diffs are cheaper to
    #: re-fetch as whole pages than to ship twice (release + every grant)
    piggyback_max_bytes: int = 1024
    #: protocol accelerator — adaptive home migration: the barrier master
    #: keeps per-page byte-weighted writer histories (EWMA, halved every
    #: epoch) fed by sized write notices, and migrates a page's home to
    #: its dominant writer when that writer's share exceeds
    #: ``migration_share`` — including multi-writer pages, which the
    #: eager sole-writer rule (``home_migration``) can never move; the
    #: old home hands the current page copy to the new home at the
    #: barrier.  Homes additionally keep per-page *reader* histories
    #: (which nodes fetched the page recently) and, right after a barrier
    #: departure, push the fresh copy to predicted re-fetchers — turning
    #: the steady-state invalidate/fault/fetch round-trip of stable
    #: producer-consumer pages into a one-way update.  Sized notices cost
    #: 16 B on the wire instead of 12.
    adaptive_migration: bool = False
    #: EWMA share of a page's write bytes a challenger needs to take the
    #: home (the incumbent home's in-place writes are credited one full
    #: page per epoch, a natural hysteresis against ping-pong)
    migration_share: float = 0.5
    #: protocol accelerator — sequential fetch read-ahead: when a fault
    #: follows a fault on the previous page (a block scan or gather), the
    #: request names up to this many further contiguous pages that are
    #: invalid locally and share the same home; the home bundles the ones
    #: it can serve into the single reply, and the faulting node installs
    #: them alongside — one round-trip instead of one per page.  0 = off.
    #: Best-effort: bundled pages the home cannot serve simply fault
    #: later, so correctness never depends on the read-ahead.
    fetch_readahead: int = 0
    #: hierarchical synchronization — tree barrier fan-in: 0 keeps the
    #: flat centralized master (every node sends its arrival straight to
    #: node 0, the master answers with one departure per node — O(n)
    #: serial frames at the master).  >= 2 arranges the nodes as a k-ary
    #: tree rooted at the master (parent of i is ``(i-1)//fanin``);
    #: arrivals climb the tree, each interior node merging its subtree's
    #: write notices into one page-level aggregate frame before
    #: forwarding, so the master receives at most ``fanin`` frames per
    #: epoch; departures fan out down the same tree.  Values are
    #: bit-identical either way — only message topology and timing move.
    barrier_fanin: int = 0
    #: lock-manager placement: ``"modulo"`` is the historical
    #: ``lock_id % n_nodes`` mapping (consecutive lock ids pile onto the
    #: low nodes under small id sets); ``"spread"`` uses a multiplicative
    #: hash so manager homes scatter across the cluster; ``"locality"``
    #: adds first-toucher assignment — a static directory node (spread
    #: hash) hands management of each lock to its first requester and
    #: forwards stray requests, grants carry the manager id so clients
    #: cache it and talk to the manager directly from then on.
    lock_shard: str = "modulo"

    def __post_init__(self):
        if self.barrier_fanin < 0 or self.barrier_fanin == 1:
            raise ValueError(
                f"barrier_fanin must be 0 (flat) or >= 2, got {self.barrier_fanin}"
            )
        if self.lock_shard not in ("modulo", "spread", "locality"):
            raise ValueError(
                f"lock_shard must be 'modulo', 'spread' or 'locality', "
                f"got {self.lock_shard!r}"
            )

    def replace(self, **kw) -> "DsmConfig":
        from dataclasses import replace as _replace

        return _replace(self, **kw)

    def accelerated(self) -> "DsmConfig":
        """This config with all protocol accelerators enabled."""
        return self.replace(
            batch_notices=True,
            lock_piggyback=True,
            adaptive_migration=True,
            fetch_readahead=8,
        )

    def hierarchical(self, fanin: int = 4, lock_shard: str = "spread") -> "DsmConfig":
        """This config with hierarchical synchronization enabled: tree
        barrier with the given fan-in plus sharded lock-manager homes.
        Pass ``lock_shard="locality"`` for first-toucher manager
        assignment on top of the spread directory."""
        return self.replace(barrier_fanin=fanin, lock_shard=lock_shard)


#: ParADE's DSM: HLRC + migratory home, blocking locks.
PARADE_DSM = DsmConfig(name="parade", home_migration=True, lock_spin=False)

#: KDSM baseline [20]: conventional HLRC, fixed home, busy-wait lock client.
KDSM_BASELINE = DsmConfig(name="kdsm", home_migration=False, lock_spin=True)

#: Homeless LRC ablation: TreadMarks-style diff pulling, no home directory.
HOMELESS_LRC = DsmConfig(name="homeless", home_migration=False, homeless=True)

#: ParADE's DSM with the protocol accelerator on: batched write-notice/diff
#: frames, lock-grant diff piggybacking, adaptive (byte-weighted) home
#: migration.  See docs/PERFORMANCE.md "Protocol optimizations".
PARADE_ACCEL = PARADE_DSM.accelerated()

#: ParADE's DSM with hierarchical synchronization on: fan-in-4 tree
#: barrier with in-tree write-notice merging plus spread lock-manager
#: sharding.  See docs/PERFORMANCE.md "Scaling to 16-32 nodes".
PARADE_HIER = PARADE_DSM.hierarchical()
