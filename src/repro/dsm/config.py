"""DSM protocol configuration: ParADE variant vs the KDSM baseline."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DsmConfig:
    """Protocol knobs distinguishing the two systems the paper compares."""

    name: str = "parade"
    #: shared-memory pool size (bytes); paper's CG run used 64 MB
    pool_bytes: int = 32 * 1024 * 1024
    #: migrate a page's home to its sole modifier at barriers (§5.2.2)
    home_migration: bool = True
    #: lock clients busy-wait (spin on CPU) instead of blocking — the KDSM
    #: behaviour behind the 2-node `single` anomaly (§6.1)
    lock_spin: bool = False
    #: CPU burst per spin poll while busy-waiting (seconds)
    spin_slice: float = 5e-6
    #: atomic page update strategy name (see repro.vm.strategies)
    update_strategy: str = "sysv-shm"
    #: OS cost profile name: "linux-2.4" or "aix-4.3.3"
    os_profile: str = "linux-2.4"
    #: homeless (TreadMarks-style) LRC: writers retain diffs, faulting nodes
    #: pull missing diffs from every writer (§5.2.2 argues home-based is
    #: preferable — this flag exists to measure that claim).  Barrier
    #: synchronisation only; the lock protocol requires a home directory.
    homeless: bool = False
    #: host-side (wall-clock) optimisation only — never changes virtual
    #: time or protocol behaviour: accesses to already-valid page ranges
    #: skip the generator fault loop via a version-stamped cache
    #: (:meth:`DsmNode.try_fast_access`).  Off = always take the slow
    #: path; the equivalence test pins both to identical traces.
    fast_path: bool = True
    #: coalesce diff runs separated by gaps of at most this many unchanged
    #: bytes into one run (saves per-run headers at the cost of resending
    #: the gap bytes).  0 = exact diffs.  Non-zero is safe only for pages
    #: with a single writer per interval: the gap bytes overwrite the
    #: home copy, clobbering concurrent writers of those bytes — homes
    #: enforce this and raise :class:`~repro.dsm.node.DiffGapClobber` on
    #: a cross-writer overlap.
    diff_gap: int = 0
    #: attach the happens-before sanitizer (:mod:`repro.sanitizer`) to the
    #: run: vector-clock data-race detection over every DSM access plus
    #: live protocol-invariant checks.  Diagnostic tool — adds host-side
    #: cost, never changes virtual time.
    sanitize: bool = False

    def replace(self, **kw) -> "DsmConfig":
        from dataclasses import replace as _replace

        return _replace(self, **kw)


#: ParADE's DSM: HLRC + migratory home, blocking locks.
PARADE_DSM = DsmConfig(name="parade", home_migration=True, lock_spin=False)

#: KDSM baseline [20]: conventional HLRC, fixed home, busy-wait lock client.
KDSM_BASELINE = DsmConfig(name="kdsm", home_migration=False, lock_spin=True)

#: Homeless LRC ablation: TreadMarks-style diff pulling, no home directory.
HOMELESS_LRC = DsmConfig(name="homeless", home_migration=False, homeless=True)
