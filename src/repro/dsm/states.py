"""Page state machine (Figure 5).

Five states per page per node:

* ``INVALID``   — no valid local copy; access faults;
* ``TRANSIENT`` — a thread is fetching/updating the page (not yet complete);
* ``BLOCKED``   — like TRANSIENT, but other threads are queued waiting for
  the update to complete and must be woken;
* ``READ_ONLY`` — valid, clean;
* ``DIRTY``     — valid, locally modified since the last synchronisation.

TRANSIENT and BLOCKED exist *because* ParADE is multi-threaded: they close
the window in which a second thread of the same process could touch a page
mid-update (§5.2.3).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Tuple


class PageState(enum.Enum):
    INVALID = "INVALID"
    TRANSIENT = "TRANSIENT"
    BLOCKED = "BLOCKED"
    READ_ONLY = "READ_ONLY"
    DIRTY = "DIRTY"

    def __repr__(self) -> str:  # pragma: no cover
        return f"PageState.{self.name}"


#: legal (from, to, reason) transitions of Figure 5
VALID_TRANSITIONS: FrozenSet[Tuple[PageState, PageState, str]] = frozenset(
    {
        # first faulting thread starts the fetch
        (PageState.INVALID, PageState.TRANSIENT, "fault"),
        # a second thread faults while the fetch is in flight
        (PageState.TRANSIENT, PageState.BLOCKED, "concurrent-fault"),
        # fetch completes (read fault path)
        (PageState.TRANSIENT, PageState.READ_ONLY, "update-done"),
        (PageState.BLOCKED, PageState.READ_ONLY, "update-done"),
        # fetch completes straight into writable (write fault path)
        (PageState.TRANSIENT, PageState.DIRTY, "update-done-write"),
        (PageState.BLOCKED, PageState.DIRTY, "update-done-write"),
        # write fault on a clean valid page
        (PageState.READ_ONLY, PageState.DIRTY, "write-fault"),
        # synchronisation flushes local modifications
        (PageState.DIRTY, PageState.READ_ONLY, "flush"),
        # incoming write notice invalidates the copy
        (PageState.READ_ONLY, PageState.INVALID, "invalidate"),
        (PageState.DIRTY, PageState.INVALID, "invalidate"),
    }
)


def is_valid_transition(src: PageState, dst: PageState, reason: str) -> bool:
    return (src, dst, reason) in VALID_TRANSITIONS


class IllegalTransition(Exception):
    def __init__(self, page: int, src: PageState, dst: PageState, reason: str):
        super().__init__(
            f"page {page}: illegal transition {src.name} -> {dst.name} ({reason})"
        )
        self.page = page
        self.src = src
        self.dst = dst
        self.reason = reason
