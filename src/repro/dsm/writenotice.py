"""Write notices.

A write notice announces "node N modified page P during interval I".  At a
synchronisation point the consumer invalidates its copy of every noticed
page it is not the home of.  ParADE aggregates notices at the barrier
master and piggybacks them on barrier messages (§5.2.2); the lock manager
hands them out with lock grants (lazy release consistency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set


@dataclass(frozen=True)
class WriteNotice:
    page: int
    writer: int
    interval: int

    #: wire size of one notice record
    NBYTES = 12


class NoticeLog:
    """Monotonic log of write notices with per-consumer cursors.

    Used by the lock manager: a grant carries every notice the acquirer has
    not yet seen (its cursor), mirroring how LRC piggybacks consistency
    information on lock grants.
    """

    def __init__(self) -> None:
        self._log: List[WriteNotice] = []
        self._cursor: Dict[int, int] = {}

    def append(self, notices) -> None:
        self._log.extend(notices)

    def cursor_of(self, consumer: int) -> int:
        """Current cursor of *consumer* (0 for a first-time consumer)."""
        return self._cursor.get(consumer, 0)

    def unseen_by(self, consumer: int) -> List[WriteNotice]:
        start = self._cursor.get(consumer, 0)
        pending = self._log[start:]
        self._cursor[consumer] = len(self._log)
        return pending

    def __len__(self) -> int:
        return len(self._log)


def merge_notices(per_node_notices: Dict[int, List[WriteNotice]]) -> Dict[int, Set[int]]:
    """Collapse notices into page -> set of writers (barrier master's view)."""
    writers: Dict[int, Set[int]] = {}
    for node, notices in per_node_notices.items():
        for wn in notices:
            writers.setdefault(wn.page, set()).add(wn.writer)
    return writers
