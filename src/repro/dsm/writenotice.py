"""Write notices.

A write notice announces "node N modified page P during interval I".  At a
synchronisation point the consumer invalidates its copy of every noticed
page it is not the home of.  ParADE aggregates notices at the barrier
master and piggybacks them on barrier messages (§5.2.2); the lock manager
hands them out with lock grants (lazy release consistency).

The protocol accelerator (docs/PERFORMANCE.md "Protocol optimizations")
extends both uses: with ``adaptive_migration`` notices carry the diff byte
count (``nbytes``) so the barrier master can keep byte-weighted writer
histories, and with ``lock_piggyback`` the :class:`NoticeLog` stores the
releaser's small diffs next to the log entries so grants can ship the
data, not just the invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set


@dataclass(frozen=True)
class WriteNotice:
    page: int
    writer: int
    interval: int
    #: diff bytes this write produced; 0 unless sized notices are in use
    #: (``DsmConfig.adaptive_migration``) — the home writer, which makes
    #: no diff, is credited a full page as documented in the config
    nbytes: int = 0

    #: wire size of one notice record
    NBYTES = 12
    #: wire size of one *sized* notice record (adaptive migration on)
    NBYTES_SIZED = 16


class NoticeLog:
    """Monotonic log of write notices with per-consumer cursors.

    Used by the lock manager: a grant carries every notice the acquirer has
    not yet seen (its cursor), mirroring how LRC piggybacks consistency
    information on lock grants.

    With ``lock_piggyback`` the manager also stores, per log index, the
    diff the releasing writer attached (:meth:`diff_at`), and remembers
    which pages each writer has released notices for (:meth:`history_of`)
    — the grant-time predictor of what an acquirer will touch next.
    """

    def __init__(self) -> None:
        self._log: List[WriteNotice] = []
        self._cursor: Dict[int, int] = {}
        #: log index -> diff attached by the releaser (piggyback mode)
        self._diffs: Dict[int, list] = {}
        #: writer -> pages it has released notices for under this lock
        self._pages_by_writer: Dict[int, Set[int]] = {}

    def append(self, notices, diffs: Optional[Dict[int, list]] = None) -> None:
        """Append *notices*; *diffs* optionally maps page -> diff for the
        subset of notices whose data rides along (piggyback mode)."""
        base = len(self._log)
        self._log.extend(notices)
        for i, wn in enumerate(notices):
            self._pages_by_writer.setdefault(wn.writer, set()).add(wn.page)
            if diffs is not None:
                diff = diffs.get(wn.page)
                if diff is not None:
                    self._diffs[base + i] = diff

    def cursor_of(self, consumer: int) -> int:
        """Current cursor of *consumer* (0 for a first-time consumer)."""
        return self._cursor.get(consumer, 0)

    def unseen_by(self, consumer: int) -> List[WriteNotice]:
        start = self._cursor.get(consumer, 0)
        pending = self._log[start:]
        self._cursor[consumer] = len(self._log)
        return pending

    def diff_at(self, index: int):
        """Diff attached to log entry *index*, or None."""
        return self._diffs.get(index)

    def history_of(self, writer: int) -> Set[int]:
        """Pages *writer* has released notices for under this lock."""
        return self._pages_by_writer.get(writer, set())

    def __len__(self) -> int:
        return len(self._log)


def dedupe_notices(notices: Iterable[WriteNotice]) -> List[WriteNotice]:
    """Drop duplicate ``(page, writer)`` notices, keeping first occurrence.

    Used at barrier arrival: a node that wrote a page in several lock
    intervals since the last barrier queued one notice per interval, but
    the master only needs page/writer pairs — later duplicates add wire
    bytes without information.  Order of first occurrences is preserved
    (the accumulated lock-interval notices come before the barrier flush's
    own), keeping the message layout deterministic.
    """
    seen = set()
    out: List[WriteNotice] = []
    for wn in notices:
        key = (wn.page, wn.writer)
        if key not in seen:
            seen.add(key)
            out.append(wn)
    return out


def merge_notices(per_node_notices: Dict[int, List[WriteNotice]]) -> Dict[int, Set[int]]:
    """Collapse notices into page -> set of writers (barrier master's view)."""
    writers: Dict[int, Set[int]] = {}
    for node, notices in per_node_notices.items():
        for wn in notices:
            writers.setdefault(wn.page, set()).add(wn.writer)
    return writers


def fold_writer_sets(dst: Dict[int, Set[int]], src: Dict[int, Iterable[int]]) -> int:
    """Fold a page -> writers aggregate *src* into *dst* in place.

    The in-tree merge step of the hierarchical barrier
    (``DsmConfig.barrier_fanin``): each interior tree node folds its own
    and its children's page-level aggregates into one map before
    forwarding a single frame to its parent, so the master sees O(fan-in)
    frames instead of O(n).  Returns the number of incoming page records
    that collapsed into an already-present page entry — the notice
    records the merge kept off the next hop's wire
    (``DsmNodeStats.notices_merged``).
    """
    merged = 0
    for page, ws in src.items():
        cur = dst.get(page)
        if cur is None:
            dst[page] = set(ws)
        else:
            cur.update(ws)
            merged += 1
    return merged


def fold_writer_bytes(dst: Dict[int, Dict[int, int]], src: Dict[int, Dict[int, int]]) -> None:
    """Fold a page -> {writer: bytes} aggregate *src* into *dst* in place
    (sized notices climbing the barrier tree; the same summing rule as
    :func:`merge_notice_bytes`, applied hop by hop)."""
    for page, by_writer in src.items():
        cur = dst.setdefault(page, {})
        for w, nb in by_writer.items():
            cur[w] = cur.get(w, 0) + nb


def merge_notice_bytes(per_node_notices: Dict[int, List[WriteNotice]]) -> Dict[int, Dict[int, int]]:
    """Collapse sized notices into page -> {writer: bytes written}.

    Feeds the adaptive-migration EWMA at the barrier master; duplicate
    ``(page, writer)`` notices (already deduped at arrival) would sum.
    """
    by_page: Dict[int, Dict[int, int]] = {}
    for node, notices in per_node_notices.items():
        for wn in notices:
            hist = by_page.setdefault(wn.page, {})
            hist[wn.writer] = hist.get(wn.writer, 0) + wn.nbytes
    return by_page
