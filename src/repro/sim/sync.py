"""Intra-node synchronisation primitives (pthread emulation).

These model POSIX-thread synchronisation *within one simulated node*: the
ParADE translator replaces intra-node OpenMP synchronisation with pthread
locks (paper §4.2/§4.3), and the runtime's page-state machine uses a
condition variable for the BLOCKED state (§5.2.3).

Inter-node synchronisation is *not* done here — that is the DSM/MPI layer.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.events import Event, SimulationError
from repro.sim.resources import Resource, Request


class Mutex:
    """pthread_mutex_t: FIFO mutual exclusion between processes."""

    def __init__(self, sim, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._res = Resource(sim, capacity=1, name=name)
        self._holder: Optional[Request] = None
        self.n_acquisitions = 0
        self.n_contended = 0

    @property
    def locked(self) -> bool:
        return self._res.count > 0

    def acquire(self):
        """Generator: ``yield from mutex.acquire()``."""
        if self.locked:
            self.n_contended += 1
        req = self._res.request()
        prof = self.sim.prof
        if prof is not None:
            from repro.profile.phases import PH_MUTEX_WAIT

            prof.push(PH_MUTEX_WAIT)
            try:
                yield req
            finally:
                prof.pop()
        else:
            yield req
        self._holder = req
        self.n_acquisitions += 1
        san = self.sim.san
        if san is not None:
            san.on_lock_acquire(("mutex", self.name))

    def release(self) -> None:
        if self._holder is None:
            raise SimulationError(f"release of unheld mutex {self.name}")
        san = self.sim.san
        if san is not None:
            san.on_lock_release(("mutex", self.name))
        holder, self._holder = self._holder, None
        self._res.release(holder)
        # The next queued request (if any) was granted synchronously; record
        # it as the new holder so its owner can release later.
        if self._res.users:
            self._holder = next(iter(self._res.users))

    def locked_region(self, body):
        """Generator: run generator *body* under the mutex."""
        yield from self.acquire()
        try:
            result = yield from body
        finally:
            self.release()
        return result


class ConditionVar:
    """pthread_cond_t bound to a :class:`Mutex`.

    ``wait`` atomically releases the mutex, suspends, and reacquires before
    returning.  ``notify``/``notify_all`` wake waiters in FIFO order.
    """

    def __init__(self, sim, mutex: Mutex, name: str = "cond"):
        self.sim = sim
        self.mutex = mutex
        self.name = name
        self._waiters: deque = deque()

    def wait(self):
        ev = Event(self.sim, name=f"condwait:{self.name}")
        self._waiters.append(ev)
        self.mutex.release()
        yield ev
        yield from self.mutex.acquire()

    def notify(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()

    def notify_all(self) -> None:
        waiters, self._waiters = self._waiters, deque()
        for ev in waiters:
            ev.succeed()

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)


class Semaphore:
    """Counting semaphore with FIFO wakeup."""

    def __init__(self, sim, value: int = 0, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: deque = deque()

    @property
    def value(self) -> int:
        return self._value

    def post(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1

    def wait(self):
        if self._value > 0:
            self._value -= 1
            return
            yield  # pragma: no cover - makes this a generator
        ev = Event(self.sim, name=f"semwait:{self.name}")
        self._waiters.append(ev)
        yield ev


class SimBarrier:
    """Intra-node thread barrier: the last of *n* arrivals releases all."""

    def __init__(self, sim, n: int, name: str = "barrier"):
        if n < 1:
            raise ValueError("barrier party count must be >= 1")
        self.sim = sim
        self.n = n
        self.name = name
        self._arrived = 0
        self._gate: Optional[Event] = None
        self.n_cycles = 0

    def arrive(self):
        """Generator: block until all *n* parties have arrived."""
        if self._gate is None:
            self._gate = Event(self.sim, name=f"gate:{self.name}")
        self._arrived += 1
        if self._arrived == self.n:
            gate, self._gate = self._gate, None
            self._arrived = 0
            self.n_cycles += 1
            gate.succeed()
            yield gate
        else:
            yield self._gate


class Latch:
    """One-shot countdown latch."""

    def __init__(self, sim, count: int, name: str = "latch"):
        if count < 0:
            raise ValueError("latch count must be >= 0")
        self.sim = sim
        self.count = count
        self._event = Event(sim, name=f"latch:{name}")
        if count == 0:
            self._event.succeed()

    def count_down(self) -> None:
        if self.count <= 0:
            raise SimulationError("latch already open")
        self.count -= 1
        if self.count == 0:
            self._event.succeed()

    def wait(self) -> Event:
        return self._event

    @property
    def open(self) -> bool:
        return self._event.triggered
