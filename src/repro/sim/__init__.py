"""Deterministic discrete-event simulation kernel.

A small, SimPy-flavoured kernel purpose-built for the ParADE reproduction.
Application "threads" (OpenMP threads, DSM protocol handlers, communication
threads) are Python generators driven by :class:`Simulator`.  Every yield
point is an :class:`Event`; code between yields executes atomically in
virtual time, so all protocol-level interleavings (page faults, message
deliveries, barrier arrivals) are explicit events with deterministic
ordering (time, priority, FIFO sequence).

Public surface::

    sim = Simulator()
    proc = sim.process(gen_fn())
    sim.run()

    yield sim.timeout(1e-6)          # advance virtual time
    yield some_event                 # wait for another event
    value = yield from subroutine()  # compose generators
"""

from repro.sim.events import Event, Timeout, AllOf, AnyOf, Interrupted
from repro.sim.process import Process
from repro.sim.core import Simulator
from repro.sim.resources import Resource, Request, Preempted
from repro.sim.store import Store
from repro.sim.sync import Mutex, ConditionVar, SimBarrier, Semaphore, Latch

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupted",
    "Process",
    "Simulator",
    "Resource",
    "Request",
    "Preempted",
    "Store",
    "Mutex",
    "ConditionVar",
    "SimBarrier",
    "Semaphore",
    "Latch",
]
