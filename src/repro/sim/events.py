"""Event primitives for the simulation kernel.

An :class:`Event` has three phases:

* *pending* — created, not yet triggered;
* *triggered* — a value (or failure) is attached and the event is queued for
  processing at some virtual time;
* *processed* — the simulator popped it off the queue and ran its callbacks.

Processes (see :mod:`repro.sim.process`) suspend by yielding an event and are
resumed by the event's callback with the event's value (or have the failure
exception thrown into their generator).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional

#: sentinel for "no value yet"
PENDING = object()

#: scheduling priorities — lower runs first at equal virtual time
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class Interrupted(SimulationError):
    """Thrown into a process that was interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """One-shot occurrence in virtual time.

    Events are created in the *pending* state.  Calling :meth:`succeed` or
    :meth:`fail` *triggers* them: the value is attached and the event is
    queued with the simulator.  Callbacks run when the simulator processes
    the event.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "name")

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        #: callables invoked with this event once processed; ``None`` after
        #: processing (attempting to add more raises).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self.name = name

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    @property
    def defused(self) -> bool:
        return self._defused

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel does not crash on it."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if self._value is not PENDING:  # triggered, without the property hop
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        # zero-delay schedule inlined (mirrors Simulator.schedule): succeed
        # is the single most frequent scheduling call in the simulator
        sim = self.sim
        if priority == NORMAL:
            sim._immediate.append((sim.now, NORMAL, next(sim._seq), self))
        elif priority == URGENT:
            sim._urgent.append((sim.now, URGENT, next(sim._seq), self))
        else:
            sim.schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim.schedule(self, delay=0.0, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the same outcome as *event* (callback helper)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event.defuse()
            self.fail(event.value)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            raise SimulationError(f"event {self!r} already processed")
        self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Event.__init__ and the schedule call inlined (mirrors
        # Simulator.schedule): timeouts are created once per CPU burst and
        # wire hop, the second-hottest allocation in the simulator
        self.sim = sim
        self.callbacks = []
        self._defused = False
        self.name = name
        self.delay = delay
        self._ok = True
        self._value = value
        if delay == 0.0:
            sim._immediate.append((sim.now, NORMAL, next(sim._seq), self))
        else:
            heapq.heappush(
                sim._heap, (sim.now + delay, NORMAL, next(sim._seq), self)
            )


class _Condition(Event):
    """Base for AllOf / AnyOf composition events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.processed and ev.ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed(self._collect())
