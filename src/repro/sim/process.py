"""Generator-driven processes.

A :class:`Process` wraps a generator.  Yielding an :class:`Event` suspends
the process until the event fires; a failed event is thrown into the
generator as an exception.  ``return value`` inside the generator sets the
process's own event value (a process *is* an event, so processes can wait on
each other).
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Optional

from repro.sim.events import Event, Interrupted, NORMAL, PENDING, URGENT


class Process(Event):
    """An event that fires when its generator terminates."""

    __slots__ = ("_gen", "_target", "label")

    def __init__(self, sim, generator, label: str = ""):
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you forget a 'yield' in the process function?)"
            )
        super().__init__(sim)
        self._gen = generator
        self._target: Optional[Event] = None
        self.label = label or getattr(generator, "__name__", "process")
        # Kick-start at current time.
        init = Event(sim, name=f"init:{self.label}")
        init._ok = True
        init._value = None
        sim.schedule(init, delay=0.0, priority=URGENT)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time.

        Only valid while the process is suspended on an event that has not
        yet fired.  The interrupted process stops waiting on its target (the
        target event itself is unaffected).
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt terminated process {self.label}")
        ev = Event(self.sim, name=f"interrupt:{self.label}")
        ev._ok = False
        ev._value = Interrupted(cause)
        ev._defused = True
        self.sim.schedule(ev, delay=0.0, priority=URGENT)
        ev.add_callback(self._resume)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:  # triggered, without the property hop
            # Interrupted after termination or double-resume: ignore.
            return
        # Detach from a previous target when resumed by an interrupt.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

        sim = self.sim
        tr = sim.trace
        pr = sim.prof
        prev_active = sim.active_process
        sim.active_process = self
        if tr is not None:
            tr.instant("sim", "resume", tid=self.label)
        if pr is not None:
            pr.on_resume(self.label)
        gen = self._gen
        try:
            while True:
                try:
                    if event._ok:
                        next_ev = gen.send(event._value)
                    else:
                        event._defused = True
                        next_ev = gen.throw(event._value)
                except StopIteration as stop:
                    if tr is not None:
                        tr.instant("sim", "end", tid=self.label, ok=True)
                    if pr is not None:
                        pr.on_thread_end(self.label)
                    self.succeed(stop.value, priority=URGENT)
                    return
                except BaseException as exc:
                    # Unhandled failure inside the process: fail the process
                    # event.  If nobody waits on it the simulator will crash
                    # loudly when it processes the failure.
                    if tr is not None:
                        tr.instant("sim", "end", tid=self.label, ok=False)
                    if pr is not None:
                        pr.on_thread_end(self.label)
                    self.fail(exc, priority=URGENT)
                    return

                try:
                    cbs = next_ev.callbacks
                except AttributeError:
                    exc = TypeError(
                        f"process {self.label!r} yielded {next_ev!r}; "
                        "processes may only yield Events"
                    )
                    event = Event(self.sim)
                    event._ok = False
                    event._value = exc
                    continue

                if cbs is None:  # processed: continue
                    # synchronously with its outcome
                    event = next_ev
                    continue

                cbs.append(self._resume)
                self._target = next_ev
                if tr is not None:
                    tr.instant(
                        "sim",
                        "block",
                        tid=self.label,
                        target=next_ev.name
                        or getattr(next_ev, "label", "")
                        or next_ev.__class__.__name__,
                    )
                return
        finally:
            sim.active_process = prev_active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "done" if self.processed else "finishing" if self.triggered else "running"
        )
        return f"<Process {self.label} {state}>"
