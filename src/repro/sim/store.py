"""FIFO message store (unbounded channel).

Models per-node inboxes: message delivery ``put``s into the store; the
communication thread ``get``s in arrival order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.sim.events import Event


class Store:
    """Unbounded FIFO of items with event-based ``get``."""

    def __init__(self, sim, name: str = "store"):
        self.sim = sim
        self.name = name
        self._get_name = f"get:{name}"
        self._items: deque = deque()
        self._getters: deque = deque()
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit *item*; wakes the oldest waiting getter (if any)."""
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        ev = Event(self.sim, name=self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def get_filtered(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        """Immediately remove and return the first queued item matching
        *predicate*, or ``None`` (non-blocking; no event)."""
        for i, item in enumerate(self._items):
            if predicate(item):
                del self._items[i]
                return item
        return None

    def peek_all(self) -> list:
        return list(self._items)
