"""The simulator event loop.

Ordering is fully deterministic: events are processed in
``(time, priority, sequence)`` order where *sequence* is a global FIFO
counter.  Two runs of the same program therefore interleave identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Optional

from repro.sim.events import Event, Timeout, NORMAL, SimulationError
from repro.sim.process import Process


class EmptySchedule(SimulationError):
    """Raised by :meth:`Simulator.step` when no events remain."""


class UnhandledProcessError(SimulationError):
    """A process failed and nobody was waiting on it."""

    def __init__(self, label: str, cause: BaseException):
        super().__init__(f"process {label!r} failed: {cause!r}")
        self.cause = cause


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self._n_processed = 0
        #: attached :class:`repro.trace.TraceRecorder`, or None (untraced).
        #: Instrumentation throughout the stack guards on this being None,
        #: which is the entire cost of tracing when it is off.
        self.trace = None
        #: the :class:`Process` currently advancing its generator; tracing
        #: uses its label as the emitting track ("thread") name.
        self.active_process = None

    # -- factories ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value=value)

    def process(self, generator, label: str = "") -> Process:
        return Process(self, generator, label=label)

    # -- scheduling -----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        heapq.heappush(self._heap, (self.now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Virtual time of the next event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise EmptySchedule()
        t, _prio, _seq, event = heapq.heappop(self._heap)
        self.now = t
        callbacks, event.callbacks = event.callbacks, None
        self._n_processed += 1
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            cause = event._value
            label = getattr(event, "label", event.name or repr(event))
            raise UnhandledProcessError(label, cause) from cause

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or virtual time exceeds *until*."""
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()

    def run_until_complete(self, process: Process, limit: Optional[float] = None) -> Any:
        """Run until *process* terminates; return its value or re-raise.

        *limit* bounds virtual time as a deadlock guard.
        """
        while not process.processed:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: schedule drained but {process.label!r} never finished"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(
                    f"virtual time limit {limit} exceeded waiting for {process.label!r}"
                )
            try:
                self.step()
            except UnhandledProcessError:
                if process.triggered and not process.ok:
                    raise process.value
                raise
        if not process.ok:
            raise process.value
        return process.value

    @property
    def events_processed(self) -> int:
        return self._n_processed
