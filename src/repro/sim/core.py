"""The simulator event loop.

Ordering is fully deterministic: events are processed in
``(time, priority, sequence)`` order where *sequence* is a global FIFO
counter.  Two runs of the same program therefore interleave identically.

Zero-delay events — the bulk of the schedule (every ``succeed``, resource
grant, message hand-off, process start and termination) — bypass the
heap: they are appended to per-priority deques, which are already sorted
because appends happen at the current (nondecreasing) ``now`` with an
increasing sequence number and one fixed priority each.
:meth:`Simulator.step` pops the lexicographic minimum of the heap top and
the deque fronts, so the processed order is exactly the
(time, priority, sequence) total order of a pure-heap schedule — O(1)
instead of O(log n) for the common case, same interleaving.  The heap is
left holding only true timeouts, which also makes its operations cheaper.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Optional

from repro.sim.events import Event, Timeout, NORMAL, URGENT, SimulationError
from repro.sim.process import Process

_heappush = heapq.heappush
_heappop = heapq.heappop


class EmptySchedule(SimulationError):
    """Raised by :meth:`Simulator.step` when no events remain."""


class UnhandledProcessError(SimulationError):
    """A process failed and nobody was waiting on it."""

    def __init__(self, label: str, cause: BaseException):
        super().__init__(f"process {label!r} failed: {cause!r}")
        self.cause = cause


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        #: zero-delay NORMAL / URGENT events; each sorted by construction
        #: (see module docstring), merged with the heap at :meth:`step`
        self._immediate: deque = deque()
        self._urgent: deque = deque()
        self._seq = itertools.count()
        self._n_processed = 0
        #: attached :class:`repro.trace.TraceRecorder`, or None (untraced).
        #: Instrumentation throughout the stack guards on this being None,
        #: which is the entire cost of tracing when it is off.
        self.trace = None
        #: attached :class:`repro.sanitizer.Sanitizer`, or None.  Same
        #: zero-cost-when-detached contract as :attr:`trace`: hooks guard
        #: on this being None.
        self.san = None
        #: attached :class:`repro.profile.Profiler`, or None.  Same
        #: zero-cost-when-detached contract as :attr:`trace`.
        self.prof = None
        #: attached :class:`repro.chaos.ChaosEngine`, or None.  Same
        #: zero-cost-when-detached contract as :attr:`trace`: the network
        #: and comm threads guard on this being None, so a chaos-free run
        #: pays one load and one compare per message.
        self.chaos = None
        #: attached :class:`repro.metrics.Metrics`, or None.  Same
        #: zero-cost-when-detached contract as :attr:`trace`; the step
        #: loop below and hook sites across the stack guard on it.
        self.metrics = None
        #: the :class:`Process` currently advancing its generator; tracing
        #: uses its label as the emitting track ("thread") name.
        self.active_process = None

    # -- factories ----------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value=value)

    def process(self, generator, label: str = "") -> Process:
        return Process(self, generator, label=label)

    # -- scheduling -----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay == 0.0:
            if priority == NORMAL:
                self._immediate.append((self.now, NORMAL, next(self._seq), event))
                return
            if priority == URGENT:
                self._urgent.append((self.now, URGENT, next(self._seq), event))
                return
        _heappush(self._heap, (self.now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Virtual time of the next event, or ``inf`` if none."""
        t = self._heap[0][0] if self._heap else float("inf")
        if self._urgent and self._urgent[0][0] < t:
            t = self._urgent[0][0]
        if self._immediate and self._immediate[0][0] < t:
            t = self._immediate[0][0]
        return t

    def step(self) -> None:
        """Process exactly one event."""
        heap = self._heap
        urg = self._urgent
        imm = self._immediate
        # seq numbers are unique, so the 4-tuple comparisons never reach
        # the (unorderable) Event element
        best = heap[0] if heap else None
        src = heap
        if urg and (best is None or urg[0] < best):
            best = urg[0]
            src = urg
        if imm and (best is None or imm[0] < best):
            best = imm[0]
            src = imm
        if best is None:
            raise EmptySchedule()
        if src is heap:
            t, _prio, _seq, event = _heappop(heap)
        else:
            t, _prio, _seq, event = src.popleft()
        self.now = t
        callbacks, event.callbacks = event.callbacks, None
        self._n_processed += 1
        tr = self.trace
        if tr is not None:
            tr.on_step(len(heap) + len(urg) + len(imm))
        mx = self.metrics
        if mx is not None:
            mx.on_step(t, len(heap) + len(urg) + len(imm))
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            cause = event._value
            label = getattr(event, "label", event.name or repr(event))
            raise UnhandledProcessError(label, cause) from cause

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or virtual time exceeds *until*."""
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._heap or self._urgent or self._immediate:
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()

    def run_until_complete(self, process: Process, limit: Optional[float] = None) -> Any:
        """Run until *process* terminates; return its value or re-raise.

        *limit* bounds virtual time as a deadlock guard.
        """
        step = self.step
        # process.callbacks is None <=> process.processed — checked raw to
        # skip two property dispatches per event in this innermost loop.
        # An empty schedule surfaces as EmptySchedule from step() rather
        # than being pre-checked, keeping the no-limit loop at two
        # attribute loads per event.
        while process.callbacks is not None:
            if limit is not None and self.peek() > limit:
                raise SimulationError(
                    f"virtual time limit {limit} exceeded waiting for {process.label!r}"
                )
            try:
                step()
            except EmptySchedule:
                raise SimulationError(
                    f"deadlock: schedule drained but {process.label!r} never finished"
                ) from None
            except UnhandledProcessError:
                if process.triggered and not process.ok:
                    raise process.value
                raise
        if not process.ok:
            raise process.value
        return process.value

    @property
    def events_processed(self) -> int:
        return self._n_processed
