"""Shared resources with FIFO (optionally prioritised) grant order.

Used to model CPUs (capacity = cores per node), NIC transmit engines
(capacity 1 → serialisation), and pthread mutexes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from repro.sim.events import Event, PENDING, SimulationError


class Preempted(SimulationError):
    """Reserved for future preemptive scheduling experiments."""


class Request(Event):
    """Grant event for a resource request; fires when capacity is assigned."""

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int):
        # Event.__init__ inlined (with the name precomputed by the
        # resource): requests are the single hottest event allocation,
        # one per CPU burst
        self.sim = resource.sim
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self.name = resource._req_name
        self.resource = resource
        self.priority = priority


class Resource:
    """Capacity-limited resource.

    Usage from a process::

        req = cpu.request()
        yield req
        ...           # hold the resource
        cpu.release(req)

    or the convenience generator ``yield from cpu.execute(duration)``.
    """

    def __init__(self, sim, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._req_name = f"req:{name}"
        self.users: set = set()
        self._queue: list = []
        self._seq = itertools.count()
        # statistics
        self.total_busy_time = 0.0
        self._grant_times: dict = {}
        self.n_grants = 0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        req = Request(self, priority)
        if len(self.users) < self.capacity and not self._queue:
            self._grant(req)
        else:
            heapq.heappush(self._queue, (priority, next(self._seq), req))
        return req

    def release(self, request: Request) -> None:
        if request not in self.users:
            raise SimulationError(f"release of non-held request on {self.name}")
        self.users.discard(request)
        start = self._grant_times.pop(request, None)
        if start is not None:
            self.total_busy_time += self.sim.now - start
        while self._queue and len(self.users) < self.capacity:
            _, _, req = heapq.heappop(self._queue)
            self._grant(req)

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (ungranted) request."""
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)

    def _grant(self, req: Request) -> None:
        self.users.add(req)
        self._grant_times[req] = self.sim.now
        self.n_grants += 1
        req.succeed(req)

    # -- convenience ----------------------------------------------------
    def execute(self, duration: float, priority: int = 0):
        """Hold one capacity unit for *duration* virtual seconds."""
        req = self.request(priority=priority)
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)

    @property
    def utilization_until_now(self) -> float:
        """Fraction of (capacity × elapsed time) spent busy so far."""
        if self.sim.now <= 0:
            return 0.0
        busy = self.total_busy_time + sum(
            self.sim.now - t for t in self._grant_times.values()
        )
        return busy / (self.capacity * self.sim.now)
