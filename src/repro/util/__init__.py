"""Small shared utilities used by more than one subsystem."""

from repro.util.tables import fmt_us, percentile, render_table

__all__ = ["fmt_us", "percentile", "render_table"]
