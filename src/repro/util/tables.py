"""Shared quantile / table-formatting helpers.

Both the profiler report (:mod:`repro.profile.report`) and the metrics
scorecard (:mod:`repro.metrics.scorecard`) render fixed-width text tables
with microsecond columns and nearest-rank percentiles.  The helpers live
here so the two renderings cannot drift apart.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def fmt_us(seconds: float) -> str:
    """Render virtual *seconds* as a microsecond figure (``1,234.5``)."""
    return f"{seconds * 1e6:,.1f}"


def percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (deterministic).

    ``q`` is in percent (50 = median).  Empty input yields 0.0; ``q`` at
    or past the ends clamps to the extreme elements.
    """
    if not sorted_vals:
        return 0.0
    if q <= 0:
        return sorted_vals[0]
    if q >= 100:
        return sorted_vals[-1]
    rank = max(1, math.ceil(q / 100.0 * len(sorted_vals)))
    return sorted_vals[rank - 1]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align: str = "",
    pad: int = 2,
) -> List[str]:
    """Fixed-width text table: header line, rule, one line per row.

    *align* holds one character per column — ``<`` (left) or ``>``
    (right); missing positions default to right-aligned, which suits the
    numeric columns both consumers mostly print.  Column widths are the
    max of header and cell widths, separated by *pad* spaces.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(c))
            else:
                widths.append(len(c))
    aligns = [align[i] if i < len(align) else ">" for i in range(len(widths))]
    sep = " " * pad

    def line(row: Sequence[str]) -> str:
        out = []
        for i, w in enumerate(widths):
            c = row[i] if i < len(row) else ""
            out.append(c.ljust(w) if aligns[i] == "<" else c.rjust(w))
        return sep.join(out).rstrip()

    lines = [line(list(headers))]
    lines.append("-" * len(lines[0]))
    lines.extend(line(row) for row in cells)
    return lines
