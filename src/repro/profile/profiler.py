"""The virtual-time profiler.

Attaches to a :class:`~repro.sim.Simulator` the same zero-cost way
``Simulator.trace`` and ``Simulator.san`` do::

    prof = Profiler(sim)          # installs itself as sim.prof
    ... run the program ...
    prof.finalize()               # close open phases at final virtual time
    data = prof.snapshot()        # ProfileData: ledgers, path, hot tables

Instrumentation sites throughout the stack guard on ``sim.prof is None``
(one load and one compare — the entire cost when detached) and drive a
per-thread **phase stack**:

* ``push(phase)`` starts a nested phase on the calling simulation thread;
* ``pop()`` returns to the enclosing phase;
* ``replace(phase, active)`` swaps the top (CPU grant: cpu-wait → busy);
* ``replace_busy()`` swaps the top for an *active* copy of the enclosing
  phase — how raw protocol CPU bursts inherit their context (a diff
  computed during a flush is *flush* time, a spin slice during a lock
  acquire is *lock-wait* time).

Time is attributed to the innermost (top) phase; every transition closes
the current slice into the thread's ledger, so per-thread phase times sum
exactly to the thread's virtual lifetime.  With ``record_intervals`` the
closed slices are also kept as a flat interval list — the input of the
critical-path sweep (:mod:`repro.profile.critical_path`) and the
Chrome-counter export (:mod:`repro.profile.export`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.profile.phases import (
    ALL_GROUPS,
    PH_IDLE,
    NET_TID,
    group_of,
    node_of_tid,
)
from repro.util.tables import percentile

#: an emitted interval: (t0, t1, tid, phase, active)
Interval = Tuple[float, float, str, str, bool]


class _ThreadState:
    """Phase stack + ledger of one simulation thread."""

    __slots__ = ("tid", "node", "start", "last", "end", "stack", "ledger")

    def __init__(self, tid: str, now: float):
        self.tid = tid
        self.node = node_of_tid(tid)
        self.start = now
        self.last = now
        self.end: Optional[float] = None
        #: innermost last; entries are (phase, active)
        self.stack: List[Tuple[str, bool]] = []
        self.ledger: Dict[str, float] = {}


class LockStats:
    """Per-distributed-lock accumulator (hot-lock table row)."""

    __slots__ = ("acquires", "remote_acquires", "hops", "waits", "last_holder")

    def __init__(self):
        self.acquires = 0
        self.remote_acquires = 0
        #: grants whose requester differs from the previous holder — the
        #: token actually moved between nodes
        self.hops = 0
        self.waits: List[float] = []
        self.last_holder: Optional[int] = None


class PageStats:
    """Per-page accumulator (hot-page table row)."""

    __slots__ = ("read_faults", "write_faults", "fetches", "fetch_bytes",
                 "diffs", "diff_bytes")

    def __init__(self):
        self.read_faults = 0
        self.write_faults = 0
        self.fetches = 0
        self.fetch_bytes = 0
        self.diffs = 0
        self.diff_bytes = 0


class Profiler:
    """Bounded-state virtual-time profiler, bound to one simulator.

    Parameters
    ----------
    sim : the :class:`~repro.sim.Simulator` whose clock stamps phases; the
        profiler installs itself as ``sim.prof`` unless ``attach=False``.
    record_intervals : keep the flat interval stream (needed for the
        critical path and the Chrome-counter export; ledgers and hot
        tables work without it).
    """

    def __init__(self, sim, attach: bool = True, record_intervals: bool = True):
        self.sim = sim
        self.record_intervals = record_intervals
        self.threads: Dict[str, _ThreadState] = {}
        self.intervals: List[Interval] = []
        #: switch-propagation intervals of the pseudo-thread ``net``
        self.net_intervals: List[Interval] = []
        self.net_flight_s = 0.0
        self.net_flights = 0
        #: reliability-layer retransmit-timer dead time (chaos runs only)
        self.retransmit_waits = 0
        self.retransmit_wait_s = 0.0
        self.pages: Dict[int, PageStats] = {}
        self.locks: Dict[int, LockStats] = {}
        self.finalized_at: Optional[float] = None
        if attach:
            self.attach()

    # -- lifecycle ------------------------------------------------------
    def attach(self) -> "Profiler":
        """Install as ``sim.prof`` so instrumentation sites find us."""
        self.sim.prof = self
        return self

    def detach(self) -> "Profiler":
        if getattr(self.sim, "prof", None) is self:
            self.sim.prof = None
        return self

    # -- thread state ---------------------------------------------------
    def _state(self) -> _ThreadState:
        proc = self.sim.active_process
        tid = proc.label if proc is not None else "main"
        st = self.threads.get(tid)
        if st is None:
            st = _ThreadState(tid, self.sim.now)
            self.threads[tid] = st
        return st

    def _close(self, st: _ThreadState, now: float) -> None:
        """Attribute [st.last, now) to the current top phase."""
        dur = now - st.last
        if dur > 0.0:
            phase, active = st.stack[-1] if st.stack else (PH_IDLE, False)
            st.ledger[phase] = st.ledger.get(phase, 0.0) + dur
            if self.record_intervals:
                self.intervals.append((st.last, now, st.tid, phase, active))
        st.last = now

    # -- phase stack hooks ----------------------------------------------
    def push(self, phase: str, active: bool = False) -> None:
        st = self._state()
        self._close(st, self.sim.now)
        st.stack.append((phase, active))

    def pop(self) -> None:
        st = self._state()
        self._close(st, self.sim.now)
        if st.stack:
            st.stack.pop()

    def replace(self, phase: str, active: bool = True) -> None:
        """Swap the top phase in place (CPU grant: cpu-wait → busy)."""
        st = self._state()
        self._close(st, self.sim.now)
        entry = (phase, active)
        if st.stack:
            st.stack[-1] = entry
        else:
            st.stack.append(entry)

    def replace_busy(self) -> None:
        """Swap the top for an *active* copy of the enclosing phase: a raw
        CPU burst inherits its context (flush, fault-work, comm-service,
        lock-wait spin ...); with no context it is bare ``overhead``."""
        from repro.profile.phases import PH_OVERHEAD

        st = self._state()
        self._close(st, self.sim.now)
        below = st.stack[-2][0] if len(st.stack) >= 2 else PH_OVERHEAD
        entry = (below, True)
        if st.stack:
            st.stack[-1] = entry
        else:
            st.stack.append(entry)

    # -- process lifecycle hooks (called from Process._resume) -----------
    def on_resume(self, label: str) -> None:
        """Ensure a ledger exists from the thread's first resume (which is
        at its creation virtual time), so leading waits are not lost."""
        if label not in self.threads:
            self.threads[label] = _ThreadState(label, self.sim.now)

    def on_thread_end(self, label: str) -> None:
        st = self.threads.get(label)
        if st is not None and st.end is None:
            self._close(st, self.sim.now)
            st.end = self.sim.now
            st.stack.clear()

    def finalize(self) -> "Profiler":
        """Close every open phase at the current virtual time (idempotent:
        re-finalizing at the same time adds nothing)."""
        now = self.sim.now
        for st in self.threads.values():
            if st.end is None:
                self._close(st, now)
                st.end = now
                st.stack.clear()
        self.finalized_at = now
        return self

    # -- network hooks ---------------------------------------------------
    def on_net_flight(self, t0: float, t1: float) -> None:
        """Record one message's switch-propagation interval."""
        self.net_flights += 1
        self.net_flight_s += t1 - t0
        if self.record_intervals and t1 > t0:
            from repro.profile.phases import PH_NET_FLIGHT

            self.net_intervals.append((t0, t1, NET_TID, PH_NET_FLIGHT, True))

    def on_retransmit_wait(self, t0: float, t1: float) -> None:
        """Record the dead time preceding one reliability-layer retransmit:
        the frame (or its ack) was lost at *t0* and the retransmit timer
        fired at *t1*.  Attributed to the pseudo-thread ``net`` like
        switch propagation, so lossy-link stalls show up on the critical
        path as ``retransmit-wait`` rather than unattributed slack."""
        self.retransmit_waits += 1
        self.retransmit_wait_s += t1 - t0
        if self.record_intervals and t1 > t0:
            from repro.profile.phases import PH_RETRANSMIT

            self.net_intervals.append((t0, t1, NET_TID, PH_RETRANSMIT, True))

    # -- hot-page hooks ---------------------------------------------------
    def _page(self, page: int) -> PageStats:
        ps = self.pages.get(page)
        if ps is None:
            ps = PageStats()
            self.pages[page] = ps
        return ps

    def on_fault(self, page: int, is_write: bool) -> None:
        ps = self._page(page)
        if is_write:
            ps.write_faults += 1
        else:
            ps.read_faults += 1

    def on_fetch(self, page: int, nbytes: int) -> None:
        ps = self._page(page)
        ps.fetches += 1
        ps.fetch_bytes += nbytes

    def on_diff(self, page: int, nbytes: int) -> None:
        ps = self._page(page)
        ps.diffs += 1
        ps.diff_bytes += nbytes

    # -- hot-lock hooks ----------------------------------------------------
    def _lock(self, lock_id: int) -> LockStats:
        ls = self.locks.get(lock_id)
        if ls is None:
            ls = LockStats()
            self.locks[lock_id] = ls
        return ls

    def on_lock_acquired(self, lock_id: int, wait: float, remote: bool) -> None:
        ls = self._lock(lock_id)
        ls.acquires += 1
        if remote:
            ls.remote_acquires += 1
        ls.waits.append(wait)

    def on_lock_grant(self, lock_id: int, requester: int) -> None:
        """Manager-side grant: counts holder-to-holder token hops."""
        ls = self._lock(lock_id)
        if ls.last_holder is not None and ls.last_holder != requester:
            ls.hops += 1
        ls.last_holder = requester

    # -- aggregation -------------------------------------------------------
    def ledgers(self) -> Dict[str, Dict[str, float]]:
        """``{tid: {phase: seconds}}`` snapshot (finalize first)."""
        return {tid: dict(st.ledger) for tid, st in sorted(self.threads.items())}

    def totals(self) -> Dict[str, float]:
        """Phase seconds summed over every thread, plus net flight."""
        out: Dict[str, float] = {}
        for st in self.threads.values():
            for phase, sec in st.ledger.items():
                out[phase] = out.get(phase, 0.0) + sec
        return out

    def group_totals(self) -> Dict[str, float]:
        out = {g: 0.0 for g in ALL_GROUPS}
        for phase, sec in self.totals().items():
            out[group_of(phase)] += sec
        return out

    def group_fractions(self, ndigits: int = 6) -> Dict[str, float]:
        """Group shares of total thread-time (what the bench records)."""
        gt = self.group_totals()
        total = sum(gt.values())
        if total <= 0.0:
            return {g: 0.0 for g in ALL_GROUPS}
        return {g: round(sec / total, ndigits) for g, sec in gt.items()}

    def thread_total(self, tid: str) -> float:
        st = self.threads[tid]
        end = st.end if st.end is not None else st.last
        return end - st.start

    def max_sum_error(self) -> float:
        """Largest |sum(phases) - lifetime| over all threads — the
        invariant ``--check`` asserts (should be ~float rounding)."""
        worst = 0.0
        for tid, st in self.threads.items():
            err = abs(sum(st.ledger.values()) - self.thread_total(tid))
            if err > worst:
                worst = err
        return worst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Profiler {len(self.threads)} threads, "
            f"{len(self.intervals)} intervals, {len(self.pages)} pages, "
            f"{len(self.locks)} locks>"
        )


#: nearest-rank percentile — re-exported from :mod:`repro.util.tables`,
#: shared with the metrics scorecard so the hot-lock table and the live
#: histograms agree on the definition
__all__ = ["Profiler", "LockStats", "PageStats", "percentile"]
