"""Phase taxonomy of the virtual-time profiler.

Every thread's virtual lifetime is partitioned into *phases* — the same
decomposition hybrid-programming studies use (compute vs. communication
vs. synchronisation) refined with the DSM-specific stalls the paper's
evaluation argues about (twin/diff work, fetch waits, busy-wait lock
clients, comm-thread CPU contention).

A phase is either **active** (occupying a CPU or the wire: candidate for
the critical path) or a **wait** (suspended on an event; some *other*
activity is responsible for the passage of virtual time).  Activity is a
property of the recorded interval, not the phase name alone: a CPU burst
issued while waiting for a lock is recorded as *active* ``lock-wait`` —
exactly how the KDSM busy-wait client burns cycles.

Fine phases
-----------

==================  ======  =====================================================
phase               group   meaning
==================  ======  =====================================================
``compute``         compute useful application work (:meth:`Node.compute`)
``cpu-wait``        cpu     queued for a CPU (contention with siblings/comm thread)
``fault-fetch``     stall   page-fault fetch: request sent, waiting for the page
                            (or homeless diff pull round-trips)
``fault-work``      stall   local fault service: SIGSEGV/mprotect overhead, twin
                            creation, atomic page update, diff application
``page-wait``       stall   blocked on a sibling thread's in-flight page update
                            (Figure 5 TRANSIENT/BLOCKED)
``flush``           stall   release-time twin/diff work: diff computation and
                            shipping at lock releases and barrier arrivals
``overhead``        stall   protocol CPU bursts outside any attributed phase
``lock-wait``       sync    distributed lock acquire, request to grant (spin
                            slices of the KDSM busy-wait client land here)
``barrier-wait``    sync    hierarchical barrier: arrival to departure
``mutex-wait``      sync    pthread mutex acquisition (intra-node)
``team-wait``       sync    combining-gate wait (reduction/single followers)
``mpi-coll``        sync    inside an MPI collective (bcast/reduce/allreduce)
``fork-join``       sync    master/agent waiting for a region's threads to join
``comm-service``    comm    comm thread draining + dispatching one message
``net-tx``          comm    NIC transmit occupancy (sender side)
``net-flight``      comm    switch propagation (pseudo-thread ``net``)
``retransmit-wait`` comm    reliability-layer dead time: a frame was lost
                            (or its ack was) and the wire sat idle until the
                            retransmit timer fired (pseudo-thread ``net``;
                            only appears under :mod:`repro.chaos` injection)
``idle``            idle    nothing attributed (inbox wait, fork wait, slack)
==================  ======  =====================================================

The coarse *groups* (``compute`` / ``stall`` / ``sync`` / ``comm`` /
``cpu`` / ``idle``) are what the bench harness records per workload so a
perf regression is attributable from ``BENCH_parade.json`` alone.
"""

from __future__ import annotations

from typing import Dict, Tuple

PH_COMPUTE = "compute"
PH_CPU_WAIT = "cpu-wait"
PH_FAULT_FETCH = "fault-fetch"
PH_FAULT_WORK = "fault-work"
PH_PAGE_WAIT = "page-wait"
PH_FLUSH = "flush"
PH_OVERHEAD = "overhead"
PH_LOCK_WAIT = "lock-wait"
PH_BARRIER = "barrier-wait"
PH_MUTEX_WAIT = "mutex-wait"
PH_TEAM_WAIT = "team-wait"
PH_MPI_COLL = "mpi-coll"
PH_FORK_JOIN = "fork-join"
PH_COMM_SERVICE = "comm-service"
PH_NET_TX = "net-tx"
PH_NET_FLIGHT = "net-flight"
PH_RETRANSMIT = "retransmit-wait"
PH_IDLE = "idle"

#: report/ledger column order (idle last)
ALL_PHASES: Tuple[str, ...] = (
    PH_COMPUTE,
    PH_CPU_WAIT,
    PH_FAULT_FETCH,
    PH_FAULT_WORK,
    PH_PAGE_WAIT,
    PH_FLUSH,
    PH_OVERHEAD,
    PH_LOCK_WAIT,
    PH_BARRIER,
    PH_MUTEX_WAIT,
    PH_TEAM_WAIT,
    PH_MPI_COLL,
    PH_FORK_JOIN,
    PH_COMM_SERVICE,
    PH_NET_TX,
    PH_NET_FLIGHT,
    PH_RETRANSMIT,
    PH_IDLE,
)

GROUP_COMPUTE = "compute"
GROUP_CPU = "cpu"
GROUP_STALL = "stall"
GROUP_SYNC = "sync"
GROUP_COMM = "comm"
GROUP_IDLE = "idle"

ALL_GROUPS: Tuple[str, ...] = (
    GROUP_COMPUTE,
    GROUP_CPU,
    GROUP_STALL,
    GROUP_SYNC,
    GROUP_COMM,
    GROUP_IDLE,
)

GROUP_OF: Dict[str, str] = {
    PH_COMPUTE: GROUP_COMPUTE,
    PH_CPU_WAIT: GROUP_CPU,
    PH_FAULT_FETCH: GROUP_STALL,
    PH_FAULT_WORK: GROUP_STALL,
    PH_PAGE_WAIT: GROUP_STALL,
    PH_FLUSH: GROUP_STALL,
    PH_OVERHEAD: GROUP_STALL,
    PH_LOCK_WAIT: GROUP_SYNC,
    PH_BARRIER: GROUP_SYNC,
    PH_MUTEX_WAIT: GROUP_SYNC,
    PH_TEAM_WAIT: GROUP_SYNC,
    PH_MPI_COLL: GROUP_SYNC,
    PH_FORK_JOIN: GROUP_SYNC,
    PH_COMM_SERVICE: GROUP_COMM,
    PH_NET_TX: GROUP_COMM,
    PH_NET_FLIGHT: GROUP_COMM,
    PH_RETRANSMIT: GROUP_COMM,
    PH_IDLE: GROUP_IDLE,
}

#: pseudo-thread id carrying switch-propagation (flight) intervals; it has
#: no ledger (messages overlap freely) and appears only in the critical path
NET_TID = "net"


def group_of(phase: str) -> str:
    """Coarse group of *phase* (unknown phases count as stall)."""
    return GROUP_OF.get(phase, GROUP_STALL)


def node_of_tid(tid: str) -> int:
    """Cluster node a simulation-thread label belongs to, or -1.

    Labels follow the runtime's conventions: ``omp[2.1]r3`` (node 2),
    ``comm[0]``, ``agent[3]``, ``mpi[1]``; ``master`` runs on node 0.
    """
    if tid == "master":
        return 0
    lb = tid.find("[")
    if lb < 0:
        return -1
    rb = tid.find("]", lb)
    if rb < 0:
        return -1
    inner = tid[lb + 1 : rb]
    dot = inner.find(".")
    if dot >= 0:
        inner = inner[:dot]
    try:
        return int(inner)
    except ValueError:
        return -1
