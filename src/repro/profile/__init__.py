"""Virtual-time profiler: phase attribution, critical path, hot reports.

Attach a :class:`Profiler` to a simulator before running (zero cost when
detached, like ``Simulator.trace``), then snapshot a
:class:`ProfileReport`::

    rt = ParadeRuntime(...)
    prof = Profiler(rt.sim)
    rt.run(program)
    report = ProfileReport.from_profiler(prof)
    print(report.render())

CLI: ``python -m repro.profile <app>`` — see :mod:`repro.profile.__main__`.
"""

from repro.profile.phases import (  # noqa: F401
    ALL_GROUPS,
    ALL_PHASES,
    GROUP_OF,
    group_of,
    node_of_tid,
)
from repro.profile.profiler import Profiler, percentile  # noqa: F401
from repro.profile.critical_path import CriticalPath, compute_critical_path  # noqa: F401
from repro.profile.report import ProfileReport  # noqa: F401
from repro.profile.export import write_profile_chrome  # noqa: F401

__all__ = [
    "Profiler",
    "ProfileReport",
    "CriticalPath",
    "compute_critical_path",
    "write_profile_chrome",
    "percentile",
    "ALL_PHASES",
    "ALL_GROUPS",
    "GROUP_OF",
    "group_of",
    "node_of_tid",
]
