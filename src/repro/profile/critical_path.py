"""Critical-path analysis over recorded profiler intervals.

The simulator advances virtual time only while *something* is active: a
CPU burst (compute, twin/diff work, comm-thread service, spin slice), a
NIC transmission, or a message in flight on the switch.  End-to-end
virtual time is therefore bounded by a chain of **active** intervals, and
the profiler records every one of them with its phase label.

Rather than materialising the full event dependency graph, we use the
coverage property: at any instant on the critical path some active
interval covers that instant (otherwise virtual time could not have
advanced past it — the event queue would have been empty).  A backward
sweep from the end of the run therefore reconstructs *a* critical path:

1. walk backwards from ``t_end``;
2. at each position, among the active intervals covering it, charge the
   segment to the covering interval chosen by a deterministic rule
   (latest start, then tid/phase lexicographic — so repeated runs agree);
3. jump to that interval's start and repeat until ``t=0``.

Gaps with no active interval (the run's ramp-up, pure timeouts) are
charged to ``unattributed``.  The result is a per-phase decomposition of
the *elapsed* time — a lower-bound certificate for what-if questions:

* zero network latency → elapsed could shrink by at most the on-path
  ``net-flight`` time;
* free twin/diff work → at most the on-path ``fault-work`` + ``flush``;
* free comm-thread service → at most the on-path ``comm-service``.

These bounds are exactly the quantities the paper's Figures 6–10 argue
about (interconnect sensitivity, consistency overhead, comm-thread CPU
contention).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.profile.phases import (
    PH_COMM_SERVICE,
    PH_FAULT_WORK,
    PH_FLUSH,
    PH_NET_FLIGHT,
    PH_NET_TX,
)

UNATTRIBUTED = "unattributed"

#: interval tuple layout shared with the profiler
Interval = Tuple[float, float, str, str, bool]


class CriticalPath:
    """Result of the backward sweep.

    Attributes
    ----------
    elapsed : the analysed span (0 .. t_end)
    phase_time : on-path seconds per phase (+ ``unattributed`` gaps)
    segments : the reconstructed chain, earliest first, as
        ``(t0, t1, tid, phase)``
    what_if : name -> lower-bound elapsed if that cost class were free
    """

    def __init__(self, elapsed: float):
        self.elapsed = elapsed
        self.phase_time: Dict[str, float] = {}
        self.segments: List[Tuple[float, float, str, str]] = []
        self.what_if: Dict[str, float] = {}

    def _charge(self, t0: float, t1: float, tid: str, phase: str) -> None:
        if t1 <= t0:
            return
        self.phase_time[phase] = self.phase_time.get(phase, 0.0) + (t1 - t0)
        # coalesce with the adjacent segment when it is the same work
        if self.segments and self.segments[-1][0] == t1 and \
                self.segments[-1][2] == tid and self.segments[-1][3] == phase:
            old = self.segments[-1]
            self.segments[-1] = (t0, old[1], tid, phase)
        else:
            self.segments.append((t0, t1, tid, phase))

    def on_path(self, *phases: str) -> float:
        return sum(self.phase_time.get(p, 0.0) for p in phases)

    def as_dict(self) -> Dict:
        return {
            "elapsed": self.elapsed,
            "phase_time": dict(sorted(self.phase_time.items())),
            "what_if": dict(sorted(self.what_if.items())),
            "n_segments": len(self.segments),
            "segments": [list(s) for s in self.segments[:200]],
        }


def compute_critical_path(
    intervals: List[Interval],
    t_end: Optional[float] = None,
) -> CriticalPath:
    """Backward-sweep critical path over *intervals* (profiler's
    ``intervals + net_intervals``); only ``active`` entries participate."""
    active = [iv for iv in intervals if iv[4] and iv[1] > iv[0]]
    if t_end is None:
        t_end = max((iv[1] for iv in active), default=0.0)
    cp = CriticalPath(t_end)
    if t_end <= 0.0:
        return cp

    # deterministic processing order: by end time, then start, tid, phase
    active.sort(key=lambda iv: (iv[1], iv[0], iv[2], iv[3]))

    t = t_end
    i = len(active) - 1
    # max-heap on start time of the intervals covering / abutting `t`
    heap: List[Tuple[float, str, str, float]] = []  # (-t0, tid, phase, t1)
    while t > 0.0:
        while i >= 0 and active[i][1] >= t:
            iv = active[i]
            heapq.heappush(heap, (-iv[0], iv[2], iv[3], iv[1]))
            i -= 1
        # drop intervals ending at/after t but starting at/after t: they
        # cannot cover any span strictly before t
        while heap and -heap[0][0] >= t:
            heapq.heappop(heap)
        if not heap:
            # nothing active covers (…, t): gap back to the latest end
            prev_end = active[i][1] if i >= 0 else 0.0
            cp._charge(prev_end, t, "-", UNATTRIBUTED)
            t = prev_end
            continue
        neg_t0, tid, phase, _t1 = heap[0]
        t0 = -neg_t0
        cp._charge(t0, t, tid, phase)
        t = t0

    cp.segments.reverse()
    cp.what_if = {
        "zero-network-latency": t_end - cp.on_path(PH_NET_FLIGHT),
        "free-twin-diff-work": t_end - cp.on_path(PH_FAULT_WORK, PH_FLUSH),
        "free-comm-service": t_end - cp.on_path(PH_COMM_SERVICE),
        "zero-net-transmit": t_end - cp.on_path(PH_NET_TX),
    }
    return cp
