"""Chrome-trace export of profiler data.

Two complementary views of the interval stream:

* **phase spans** — every recorded interval becomes a ``ph: "X"`` slice on
  its thread's track, so Perfetto shows the phase timeline per thread
  (the pseudo-thread ``net`` carries message flights);
* **group counters** — per-node ``ph: "C"`` counter series sampled at a
  fixed grid: how many threads of that node are in each coarse group at
  that instant.  Perfetto stacks these, giving the live compute / stall /
  sync / comm breakdown the bench harness summarises as fractions.

Both reuse the trace layer's :func:`repro.trace.export.to_chrome`
machinery by synthesising :class:`~repro.trace.events.TraceEvent`
records, so profile exports can be merged with protocol traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.trace.events import TraceEvent, CAT_COUNTER
from repro.trace.export import write_chrome_json
from repro.profile.phases import ALL_GROUPS, NET_TID, group_of, node_of_tid
from repro.profile.profiler import Interval, Profiler

#: category of synthesized profile slices
CAT_PROFILE = "profile"


def intervals_to_events(intervals: List[Interval]) -> List[TraceEvent]:
    """Phase slices: one complete (``X``) event per recorded interval."""
    out = []
    for t0, t1, tid, phase, active in intervals:
        node = -1 if tid == NET_TID else node_of_tid(tid)
        out.append(
            TraceEvent(
                ts=t0,
                cat=CAT_PROFILE,
                name=phase,
                node=node,
                tid=tid,
                dur=t1 - t0,
                args={"active": int(active)},
            )
        )
    return out


def group_counter_events(
    prof: Profiler, n_samples: int = 400
) -> List[TraceEvent]:
    """Per-node stacked counter series of thread counts per coarse group.

    Samples the interval stream on a uniform grid (``n_samples`` points
    over the elapsed span) — deterministic and bounded regardless of how
    many intervals were recorded.
    """
    t_end = prof.finalized_at if prof.finalized_at else prof.sim.now
    if not prof.intervals or t_end <= 0.0 or n_samples < 2:
        return []
    dt = t_end / (n_samples - 1)
    # node -> sample index -> group -> count; built by rasterising each
    # interval onto the grid (half-open [t0, t1))
    counts: Dict[int, List[Dict[str, int]]] = {}
    for t0, t1, tid, phase, _active in prof.intervals:
        node = node_of_tid(tid)
        grid = counts.get(node)
        if grid is None:
            grid = [dict() for _ in range(n_samples)]
            counts[node] = grid
        g = group_of(phase)
        i0 = 0 if t0 <= 0.0 else min(n_samples - 1, -int(-t0 // dt))  # ceil
        i1 = min(n_samples - 1, int(t1 // dt))
        for i in range(i0, i1 + 1):
            ti = i * dt
            if t0 <= ti < t1 or (i == n_samples - 1 and t1 >= t_end):
                grid[i][g] = grid[i].get(g, 0) + 1
    events = []
    for node in sorted(counts):
        grid = counts[node]
        for i, sample in enumerate(grid):
            events.append(
                TraceEvent(
                    ts=i * dt,
                    cat=CAT_COUNTER,
                    name=f"phases/node{node}",
                    node=node,
                    tid="phases",
                    args={g: sample.get(g, 0) for g in ALL_GROUPS},
                    ph="C",
                )
            )
    return events


def write_profile_chrome(
    prof: Profiler,
    path: str,
    label: str = "repro.profile",
    n_samples: int = 400,
    extra_events: Optional[List[TraceEvent]] = None,
) -> int:
    """Write phase slices + group counters (+ merged *extra_events*) as a
    Chrome trace; returns the record count."""
    events = intervals_to_events(prof.intervals + prof.net_intervals)
    events.extend(group_counter_events(prof, n_samples=n_samples))
    if extra_events:
        events.extend(extra_events)
    events.sort(key=lambda ev: (ev.ts, ev.node, ev.tid, ev.name))
    return write_chrome_json(events, path, label=label)
