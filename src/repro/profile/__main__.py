"""Profile CLI: run a registered app under the virtual-time profiler.

Usage::

    python -m repro.profile                     # helmholtz, 4 nodes, parade
    python -m repro.profile cg --nodes 2 --mode sdsm
    python -m repro.profile helmholtz --json hh.prof.json --chrome hh.json
    python -m repro.profile helmholtz --check   # invariants, exit 2 on fail
    python -m repro.profile --list              # show registered workloads

Prints the per-thread phase table (rows sum to each thread's virtual
lifetime), the critical-path decomposition with what-if lower bounds, and
the hot-page / hot-lock tables.  ``--json`` writes the full machine-
readable report; ``--chrome`` writes phase slices + stacked group
counters loadable in Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.profile.profiler import Profiler
from repro.profile.report import ProfileReport
from repro.profile.export import write_profile_chrome


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="run a registered ParADE app under the virtual-time "
        "profiler: per-thread phase attribution, critical path, hot pages/locks",
    )
    parser.add_argument(
        "app", nargs="?", default="helmholtz",
        help="registered workload name (see --list); default: helmholtz",
    )
    parser.add_argument("--list", action="store_true", help="list registered workloads and exit")
    parser.add_argument("--nodes", type=int, default=4, help="cluster size (default 4)")
    parser.add_argument(
        "--mode", choices=("parade", "sdsm"), default="parade",
        help="hybrid ParADE translation or conventional SDSM (default parade)",
    )
    parser.add_argument(
        "--exec", dest="exec_name", default="2Thread-2CPU",
        help="execution configuration: 1Thread-1CPU, 1Thread-2CPU or "
        "2Thread-2CPU (default)",
    )
    parser.add_argument("--json", default=None, help="write the full report as JSON")
    parser.add_argument(
        "--chrome", default=None,
        help="write phase slices + group counters as Chrome trace JSON",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="rows in the hot-page / hot-lock tables (default 10)",
    )
    parser.add_argument(
        "--no-critical-path", action="store_true",
        help="skip the critical-path sweep (ledgers and hot tables only)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="assert profiler invariants (phase sums = thread lifetimes, "
        "JSON round-trip); exit 2 on violation",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    # imported here so `--help` stays fast and dependency-light
    from repro.bench.figures import registered_programs
    from repro.runtime import ParadeRuntime, ALL_EXEC_CONFIGS

    registry = registered_programs()
    if args.list:
        for name, entry in sorted(registry.items()):
            print(f"{name:<12} {entry['figure']:<6} {entry['note']}")
        return 0

    entry = registry.get(args.app)
    if entry is None:
        print(
            f"unknown app {args.app!r}; registered: {', '.join(sorted(registry))}",
            file=sys.stderr,
        )
        return 1
    exec_config = next((ec for ec in ALL_EXEC_CONFIGS if ec.name == args.exec_name), None)
    if exec_config is None:
        names = ", ".join(ec.name for ec in ALL_EXEC_CONFIGS)
        print(f"unknown exec config {args.exec_name!r}; use one of: {names}", file=sys.stderr)
        return 1
    if args.nodes < 1:
        print(f"--nodes must be >= 1, got {args.nodes}", file=sys.stderr)
        return 1

    rt = ParadeRuntime(
        n_nodes=args.nodes,
        exec_config=exec_config,
        mode=args.mode,
        pool_bytes=entry["pool_bytes"],
    )
    prof = Profiler(rt.sim)
    result = rt.run(entry["factory"]())
    prof.finalize()

    meta = {
        "app": args.app,
        "mode": args.mode,
        "nodes": args.nodes,
        "exec": exec_config.name,
        "title": f"{args.app}/{args.mode}/{args.nodes}n/{exec_config.name}",
        "elapsed_virtual_s": result.elapsed,
    }
    report = ProfileReport.from_profiler(
        prof, meta=meta, critical_path=not args.no_critical_path
    )
    print(report.render(top=args.top))

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.as_dict(), fh, indent=1, sort_keys=True)
        print(f"json : report -> {args.json}")
    if args.chrome:
        n = write_profile_chrome(prof, args.chrome, label=meta["title"])
        print(f"chrome: {n} records -> {args.chrome}")

    if args.check:
        problems = report.check()
        # the report must survive a JSON round trip bit-for-bit
        round_tripped = ProfileReport.from_dict(json.loads(json.dumps(report.as_dict())))
        if round_tripped.as_dict() != report.as_dict():
            problems.append("report does not round-trip through JSON")
        if round_tripped.render(top=args.top) != report.render(top=args.top):
            problems.append("rendered report differs after JSON round trip")
        if problems:
            for p in problems:
                print(f"CHECK FAILED: {p}", file=sys.stderr)
            return 2
        print(f"check: ok ({len(report.data['threads'])} threads, "
              f"max phase-sum error {report.data['max_sum_error']:.3g} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
