"""Profile reports: the aggregated data model + text rendering.

:class:`ProfileReport` snapshots a finalized :class:`Profiler` into plain
dictionaries (JSON round-trippable via :meth:`as_dict`/:meth:`from_dict`)
and renders the human tables:

* per-thread phase ledger, rows summing to each thread's virtual lifetime;
* critical-path decomposition with the what-if lower bounds;
* hot-page table (faults, fetch/diff traffic per page);
* hot-lock table (acquires, remote share, token hops, wait percentiles).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.profile.phases import ALL_GROUPS, ALL_PHASES, group_of
from repro.profile.profiler import Profiler
from repro.profile.critical_path import compute_critical_path
from repro.util.tables import fmt_us as _fmt_us, percentile

#: wait-time histogram percentiles reported per lock
LOCK_PERCENTILES = (50, 90, 99)


class ProfileReport:
    """Aggregated, serialisable view of one profiled run."""

    def __init__(self, data: Dict):
        self.data = data

    # -- construction ----------------------------------------------------
    @classmethod
    def from_profiler(
        cls,
        prof: Profiler,
        meta: Optional[Dict] = None,
        critical_path: bool = True,
    ) -> "ProfileReport":
        prof.finalize()
        threads = {}
        for tid, st in sorted(prof.threads.items()):
            threads[tid] = {
                "node": st.node,
                "start": st.start,
                "end": st.end if st.end is not None else st.last,
                "total": prof.thread_total(tid),
                "phases": {p: st.ledger[p] for p in ALL_PHASES if p in st.ledger},
            }
        pages = {
            str(p): {
                "read_faults": ps.read_faults,
                "write_faults": ps.write_faults,
                "fetches": ps.fetches,
                "fetch_bytes": ps.fetch_bytes,
                "diffs": ps.diffs,
                "diff_bytes": ps.diff_bytes,
            }
            for p, ps in sorted(prof.pages.items())
        }
        locks = {}
        for lid, ls in sorted(prof.locks.items()):
            waits = sorted(ls.waits)
            locks[str(lid)] = {
                "acquires": ls.acquires,
                "remote_acquires": ls.remote_acquires,
                "hops": ls.hops,
                "wait_total": sum(waits),
                "wait_max": waits[-1] if waits else 0.0,
                "wait_pcts": {
                    str(q): percentile(waits, q) for q in LOCK_PERCENTILES
                },
            }
        data = {
            "meta": dict(meta or {}),
            "elapsed": prof.finalized_at,
            "max_sum_error": prof.max_sum_error(),
            "threads": threads,
            "totals": {p: v for p, v in sorted(prof.totals().items())},
            "group_totals": prof.group_totals(),
            "group_fractions": prof.group_fractions(),
            "net": {"flights": prof.net_flights, "flight_s": prof.net_flight_s},
            "pages": pages,
            "locks": locks,
        }
        if critical_path and prof.record_intervals:
            cp = compute_critical_path(
                prof.intervals + prof.net_intervals, t_end=prof.finalized_at
            )
            data["critical_path"] = cp.as_dict()
        return cls(data)

    # -- JSON round trip -------------------------------------------------
    def as_dict(self) -> Dict:
        return self.data

    @classmethod
    def from_dict(cls, data: Dict) -> "ProfileReport":
        return cls(data)

    # -- checks ----------------------------------------------------------
    def check(self, tol: float = 1e-6) -> List[str]:
        """Invariant violations (empty list = healthy).

        * every thread's phase times sum to its virtual lifetime;
        * critical-path phase times sum to the elapsed span.
        """
        problems = []
        for tid, t in self.data["threads"].items():
            err = abs(sum(t["phases"].values()) - t["total"])
            scale = max(1.0, abs(t["total"]))
            if err > tol * scale:
                problems.append(
                    f"thread {tid}: phases sum to {sum(t['phases'].values()):.9f}"
                    f" but lifetime is {t['total']:.9f} (err {err:.3g})"
                )
        cp = self.data.get("critical_path")
        if cp is not None:
            err = abs(sum(cp["phase_time"].values()) - cp["elapsed"])
            if err > tol * max(1.0, cp["elapsed"]):
                problems.append(
                    f"critical path covers {sum(cp['phase_time'].values()):.9f}"
                    f" of elapsed {cp['elapsed']:.9f} (err {err:.3g})"
                )
        return problems

    # -- text rendering ----------------------------------------------------
    def render(self, top: int = 10) -> str:
        out: List[str] = []
        meta = self.data.get("meta") or {}
        title = meta.get("title") or meta.get("app") or "profile"
        out.append(f"== virtual-time profile: {title} ==")
        if meta:
            kv = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()) if k != "title")
            if kv:
                out.append(f"   {kv}")
        out.append(f"   elapsed virtual time: {_fmt_us(self.data['elapsed'] or 0.0)} us")
        out.append("")
        out.extend(self._render_threads())
        out.append("")
        out.extend(self._render_groups())
        cp = self.data.get("critical_path")
        if cp:
            out.append("")
            out.extend(self._render_critical_path(cp))
        if self.data.get("pages"):
            out.append("")
            out.extend(self._render_pages(top))
        if self.data.get("locks"):
            out.append("")
            out.extend(self._render_locks(top))
        return "\n".join(out) + "\n"

    def _render_threads(self) -> List[str]:
        threads = self.data["threads"]
        phases = [
            p for p in ALL_PHASES
            if any(p in t["phases"] for t in threads.values())
        ]
        head = ["thread".ljust(16)] + [p.rjust(12) for p in phases] + [
            "sum".rjust(12), "lifetime".rjust(12)]
        lines = ["-- per-thread phases (us) --", "".join(head)]
        for tid, t in threads.items():
            row = [tid.ljust(16)]
            for p in phases:
                row.append(_fmt_us(t["phases"].get(p, 0.0)).rjust(12))
            row.append(_fmt_us(sum(t["phases"].values())).rjust(12))
            row.append(_fmt_us(t["total"]).rjust(12))
            lines.append("".join(row))
        return lines

    def _render_groups(self) -> List[str]:
        gt = self.data["group_totals"]
        gf = self.data["group_fractions"]
        lines = ["-- phase groups (all threads) --"]
        for g in ALL_GROUPS:
            lines.append(
                f"  {g:<8} {_fmt_us(gt.get(g, 0.0)):>14} us  "
                f"{100.0 * gf.get(g, 0.0):6.2f}%"
            )
        return lines

    def _render_critical_path(self, cp: Dict) -> List[str]:
        lines = ["-- critical path --"]
        elapsed = cp["elapsed"] or 1e-30
        for phase, sec in sorted(
            cp["phase_time"].items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {phase:<14} {_fmt_us(sec):>14} us  {100.0 * sec / elapsed:6.2f}%"
            )
        lines.append("  what-if lower bounds on elapsed:")
        for name, bound in sorted(cp["what_if"].items()):
            saved = cp["elapsed"] - bound
            lines.append(
                f"    {name:<22} {_fmt_us(bound):>14} us"
                f"  (saves {100.0 * saved / elapsed:5.2f}%)"
            )
        return lines

    def _render_pages(self, top: int) -> List[str]:
        rows = sorted(
            self.data["pages"].items(),
            key=lambda kv: -(kv[1]["read_faults"] + kv[1]["write_faults"]),
        )[:top]
        lines = [f"-- hot pages (top {len(rows)} of {len(self.data['pages'])}) --",
                 f"{'page':>8} {'rflt':>6} {'wflt':>6} {'fetches':>8} "
                 f"{'fetchB':>10} {'diffs':>6} {'diffB':>10}"]
        for page, ps in rows:
            lines.append(
                f"{page:>8} {ps['read_faults']:>6} {ps['write_faults']:>6} "
                f"{ps['fetches']:>8} {ps['fetch_bytes']:>10} "
                f"{ps['diffs']:>6} {ps['diff_bytes']:>10}"
            )
        return lines

    def _render_locks(self, top: int) -> List[str]:
        rows = sorted(
            self.data["locks"].items(), key=lambda kv: -kv[1]["wait_total"]
        )[:top]
        pct_heads = "".join(f"{'p' + str(q) + '(us)':>11}" for q in LOCK_PERCENTILES)
        lines = [f"-- hot locks (top {len(rows)} of {len(self.data['locks'])}) --",
                 f"{'lock':>6} {'acq':>6} {'remote':>7} {'hops':>6} "
                 f"{'wait(us)':>12}{pct_heads}{'max(us)':>11}"]
        for lid, ls in rows:
            pcts = "".join(
                f"{_fmt_us(ls['wait_pcts'][str(q)]):>11}" for q in LOCK_PERCENTILES
            )
            lines.append(
                f"{lid:>6} {ls['acquires']:>6} {ls['remote_acquires']:>7} "
                f"{ls['hops']:>6} {_fmt_us(ls['wait_total']):>12}"
                f"{pcts}{_fmt_us(ls['wait_max']):>11}"
            )
        return lines
