"""Test/benchmark support: one-line builders for common stacks.

Used by the unit tests and the figure benchmarks; also convenient in user
scripts that want a raw cluster/DSM without the full runtime.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster import Cluster, ClusterConfig
from repro.mpi import CommThread, Communicator
from repro.dsm import DsmSystem
from repro.dsm.config import DsmConfig, PARADE_DSM


def build_cluster(n_nodes: int = 4, cpus: int = 2, **kw) -> Cluster:
    """A simulated cluster with *n_nodes* SMP nodes."""
    return Cluster(ClusterConfig(n_nodes=n_nodes, cpus_per_node=cpus, **kw))


def build_comm(cluster: Cluster):
    """Started comm threads + a communicator over *cluster*."""
    cts = [CommThread(n, cluster.network) for n in cluster.nodes]
    for ct in cts:
        ct.start()
    return cts, Communicator(cluster, cts)


def build_dsm(
    n_nodes: int = 4,
    dsm_config: Optional[DsmConfig] = None,
    pool_bytes: int = 1 << 20,
    cpus: int = 2,
):
    """Cluster + started comm threads + DSM system."""
    cluster = build_cluster(n_nodes, cpus=cpus)
    cts = [CommThread(n, cluster.network) for n in cluster.nodes]
    for ct in cts:
        ct.start()
    cfg = (dsm_config or PARADE_DSM).replace(pool_bytes=pool_bytes)
    dsm = DsmSystem(cluster, cts, cfg)
    return cluster, cts, dsm


def run_all(cluster: Cluster, generators, labels: Optional[List[str]] = None):
    """Spawn one process per generator, run to completion, return values.

    Raises if any process deadlocks or fails."""
    labels = labels or [f"p{i}" for i in range(len(generators))]
    procs = [cluster.sim.process(g, label=l) for g, l in zip(generators, labels)]
    cluster.sim.run()
    for p in procs:
        assert p.processed, f"{p.label} never finished (deadlock?)"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]
