"""Compatibility shim: lets `python setup.py develop` work on toolchains
without the `wheel` package (PEP 660 editable installs require it)."""

from setuptools import setup

setup()
